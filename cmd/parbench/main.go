// Command parbench regenerates the evaluation's tables and figures
// (experiments E1–E23; see DESIGN.md for the index) and hosts the
// runtime traffic demos.
//
// Usage:
//
//	parbench -exp all            # run the whole suite
//	parbench -exp E5,E6          # selected experiments
//	parbench -exp E2 -quick      # smoke-size problems
//	parbench -exp E1 -csv out/   # also write CSV per experiment
//	parbench -list               # show the experiment index
//	parbench -kernels            # show the kernel registry index
//	parbench -kernel gups        # one kernel through every ladder
//	parbench -pipeline           # streaming-pipeline traffic demo
//	parbench -serve              # multi-tenant request-serving demo
//	parbench -serve -openloop -rate 2000 -slo 10ms
//	                             # open-loop schedule-driven traffic
//	parbench -serve -wire loopback
//	                             # same demo over a real socket
//
// Flags -procs, -vprocs, -reps and -seed control the sweep; -executor
// selects the dispatch runtime (shared persistent pool, a dedicated
// pool, or goroutine-per-call spawning), -scratch toggles the
// scratch-arena buffer reuse, and -adapt=on replaces every hard-coded
// grain/policy/cutoff with the online load-aware tuning runtime
// (internal/adapt), so the runtime-overhead, GC-pressure and
// self-tuning deltas are all observable from the CLI. -serve runs
// skewed multi-tenant traffic (one hot tenant, three light ones)
// through the batched admission-control server (internal/serve) and
// prints its admission/batching counters, client-observed latency
// percentiles and the per-tenant fair-share split; its closed-loop
// clients retry rejected requests under capped exponential backoff
// with rng jitter and report retry and error counts per tenant, so
// the printed percentiles' denominator is always every issued
// request. -openloop replaces the closed-loop clients with the
// internal/loadgen arrival-schedule generator (-rate offered req/s,
// -arrival const|poisson) and prints corrected (intended-arrival) and
// uncorrected (send-time) percentiles side by side — the honest
// tail-latency mode. -slo gives every request a deadline budget: the
// server refuses requests that cannot make it (door prediction or
// queue expiry) instead of serving them late. A summary line after
// the experiments reports the executor's steal counters next to the
// scratch pool's hit/miss/bytes gauges (plus, with -adapt=on, the
// controller's site/exploration/convergence counters). Unknown flag
// values are rejected with a usage error, never silently defaulted;
// -pipeline and -serve are mutually exclusive, and the open-loop
// knobs require the modes they refine (-openloop needs -serve; -rate
// and -arrival need -openloop; -slo needs -serve). -wire reruns a
// -serve demo over the binary wire protocol (internal/wire) instead
// of in-process calls: 'loopback' spins an in-process listener on a
// real TCP socket (the CI smoke path), 'host:port' or 'unix:PATH'
// target a running parserve — where -cache is refused, because cache
// invalidation (BumpGeneration) is server-side state the protocol
// does not carry.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/adapt"
	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/kernel"
	"repro/internal/loadgen"
	"repro/internal/par"
	"repro/internal/perf"
	"repro/internal/pipeline"
	"repro/internal/rescache"
	"repro/internal/rng"
	"repro/internal/scratch"
	"repro/internal/serve"
	"repro/internal/wire"
)

func main() {
	var (
		expFlag   = flag.String("exp", "all", "comma-separated experiment ids (E1..E14) or 'all'")
		quick     = flag.Bool("quick", false, "use smoke-test problem sizes")
		procsFlag = flag.String("procs", "", "comma-separated worker counts (default 1,2,4,8)")
		vprocs    = flag.String("vprocs", "", "comma-separated virtual BSP processor counts")
		reps      = flag.Int("reps", 0, "measured repetitions per point (default 3)")
		seed      = flag.Uint64("seed", 0, "workload seed (default 42)")
		csvDir    = flag.String("csv", "", "directory to also write one CSV per experiment")
		list      = flag.Bool("list", false, "list the experiment index and exit")
		executor  = flag.String("executor", "pooled",
			"dispatch runtime: 'pooled' (shared persistent pool), 'dedicated' (fresh pool), or 'spawn' (goroutine per call)")
		scratchMode = flag.String("scratch", "on",
			"scratch-arena buffer reuse: 'on' (pooled temporaries) or 'off' (fresh allocation per call)")
		adaptMode = flag.String("adapt", "off",
			"online load-aware tuning: 'on' (grain/policy/cutoffs picked per call site by the adapt runtime) or 'off'")
		pipelineMode = flag.Bool("pipeline", false,
			"run the streaming-pipeline traffic demo (gen→map→filter→sort→histogram) and print its throughput/occupancy stats instead of experiments")
		serveMode = flag.Bool("serve", false,
			"run the multi-tenant request-serving traffic demo (batched admission control over mixed sort/histogram/scan/sum requests) and print its throughput/latency-percentile stats instead of experiments")
		shardsFlag = flag.Int("shards", 0,
			"with -serve: shard the server into N executor shards with tenant-affinity routing and diffusive migration, and print per-shard stats (0 = unsharded; sharded mode builds its own per-shard executors, so -executor is ignored)")
		openLoop = flag.Bool("openloop", false,
			"with -serve: drive open-loop schedule-driven traffic (internal/loadgen) instead of closed-loop clients, and print corrected vs uncorrected latency percentiles side by side")
		rateFlag = flag.Float64("rate", 0,
			"with -openloop: offered load in requests per second (default 2000)")
		arrivalFlag = flag.String("arrival", "",
			"with -openloop: arrival process, 'const' (fixed spacing) or 'poisson' (bursty; the default)")
		cacheFlag = flag.String("cache", "",
			"with -serve: 'on' puts the generation-stamped result cache in front of the server (repeat requests are served from cached output with zero kernel work; cache stats printed) or 'off' (the default)")
		deltaFlag = flag.String("delta", "",
			"with -serve -cache on (closed-loop only): 'on' mixes incremental standing-query traffic into the demo — each client maintains a sorted record through CallDelta appends instead of re-sorting — or 'off' (the default)")
		sloFlag = flag.Duration("slo", 0,
			"with -serve: per-request deadline budget (e.g. 10ms); requests predicted or observed to miss it are refused with ErrDeadlineExceeded instead of served late (0 = no deadlines)")
		wireFlag = flag.String("wire", "",
			"with -serve: drive the demo over the binary wire protocol instead of in-process calls — 'loopback' spins an in-process listener on a real TCP socket, 'host:port' or 'unix:PATH' targets a running parserve")
		kernelsFlag = flag.Bool("kernels", false, "list the kernel registry (name, variants, stream/relation wiring) and exit")
		kernelFlag  = flag.String("kernel", "",
			"run one registered kernel through every ladder — dispatched one-shot vs serial oracle, each variant, and the serve batch path — and print verified timings instead of experiments")
	)
	flag.Parse()

	if *pipelineMode && *serveMode {
		fatalf("-pipeline and -serve are mutually exclusive")
	}
	if *shardsFlag < 0 {
		fatalf("bad -shards %d: want >= 0", *shardsFlag)
	}
	if *shardsFlag > 0 && !*serveMode {
		fatalf("-shards requires -serve")
	}
	if *openLoop && !*serveMode {
		fatalf("-openloop requires -serve")
	}
	if *sloFlag != 0 && !*serveMode {
		fatalf("-slo requires -serve")
	}
	if *sloFlag < 0 {
		fatalf("bad -slo %v: want >= 0", *sloFlag)
	}
	if *rateFlag != 0 && !*openLoop {
		fatalf("-rate requires -openloop")
	}
	if *rateFlag < 0 {
		fatalf("bad -rate %v: want > 0", *rateFlag)
	}
	if *arrivalFlag != "" && !*openLoop {
		fatalf("-arrival requires -openloop")
	}
	poissonArrivals, arrErr := arrivalFor(*arrivalFlag)
	if arrErr != nil {
		fatalf("%v", arrErr)
	}
	cacheOn, cacheErr := cacheFor(*cacheFlag)
	if cacheErr != nil {
		fatalf("%v", cacheErr)
	}
	deltaOn, deltaErr := deltaFor(*deltaFlag)
	if deltaErr != nil {
		fatalf("%v", deltaErr)
	}
	if *cacheFlag != "" && !*serveMode {
		fatalf("-cache requires -serve")
	}
	if *deltaFlag != "" && !*serveMode {
		fatalf("-delta requires -serve")
	}
	if deltaOn && !cacheOn {
		fatalf("-delta on requires -cache on (the incremental demo measures the cache and delta paths together)")
	}
	if deltaOn && *openLoop {
		fatalf("-delta on requires the closed-loop demo (drop -openloop: standing-query records are per-client state)")
	}
	if *wireFlag != "" && !*serveMode {
		fatalf("-wire requires -serve")
	}
	if cacheOn && *wireFlag != "" && *wireFlag != "loopback" {
		fatalf("-cache on requires -wire loopback or in-process (BumpGeneration is server-side state the wire protocol does not carry)")
	}

	if *list {
		fmt.Println("id    ref       title")
		for _, e := range core.Experiments {
			fmt.Printf("%-5s %-9s %s\n", e.ID, e.Ref, e.Title)
		}
		return
	}

	if *kernelsFlag {
		printKernels(os.Stdout)
		return
	}

	cfg := core.Config{Quick: *quick, Reps: *reps, Seed: *seed}
	var err error
	if cfg.Executor, err = executorFor(*executor); err != nil {
		fatalf("%v", err)
	}
	if cfg.Scratch, err = scratchFor(*scratchMode); err != nil {
		fatalf("%v", err)
	}
	if cfg.Adaptive, err = adaptFor(*adaptMode); err != nil {
		fatalf("%v", err)
	}
	if cfg.Procs, err = parseInts(*procsFlag); err != nil {
		fatalf("bad -procs: %v", err)
	}
	if cfg.VProcs, err = parseInts(*vprocs); err != nil {
		fatalf("bad -vprocs: %v", err)
	}

	if *kernelFlag != "" {
		if err := runKernelDemo(cfg, *kernelFlag, os.Stdout); err != nil {
			fatalf("kernel: %v", err)
		}
		printRuntimeStats(cfg)
		return
	}

	if *pipelineMode {
		if err := runPipelineDemo(cfg, os.Stdout); err != nil {
			fatalf("pipeline: %v", err)
		}
		printRuntimeStats(cfg)
		return
	}

	if *serveMode {
		if *openLoop {
			rate := *rateFlag
			if rate == 0 {
				rate = 2000
			}
			if err := runOpenLoopDemo(cfg, *shardsFlag, rate, poissonArrivals, *sloFlag, cacheOn, *wireFlag, os.Stdout); err != nil {
				fatalf("serve: %v", err)
			}
		} else if err := runServeDemo(cfg, *shardsFlag, *sloFlag, cacheOn, deltaOn, *wireFlag, os.Stdout); err != nil {
			fatalf("serve: %v", err)
		}
		printRuntimeStats(cfg)
		return
	}

	ids := selectIDs(*expFlag)
	if len(ids) == 0 {
		fatalf("no experiments selected; try -list")
	}
	for _, id := range ids {
		e, ok := core.ByID(id)
		if !ok {
			fatalf("unknown experiment %q; try -list", id)
		}
		start := time.Now()
		t := e.Run(cfg)
		fmt.Printf("== %s (%s) — %s [%s]\n", e.ID, e.Ref, e.Title, time.Since(start).Round(time.Millisecond))
		if err := t.Render(os.Stdout); err != nil {
			fatalf("render: %v", err)
		}
		fmt.Println()
		if *csvDir != "" {
			if err := writeCSV(*csvDir, e.ID, t); err != nil {
				fatalf("csv: %v", err)
			}
		}
	}
	printRuntimeStats(cfg)
}

// runPipelineDemo drives the ISSUE's reference analytics chain — a
// generated stream mapped, filtered, sorted and histogrammed — through
// the streaming pipeline runtime, then prints the per-stage breakdown
// and the throughput/occupancy stats line. It honors the -executor,
// -scratch, -adapt and -quick flags through cfg.
func runPipelineDemo(cfg core.Config, w io.Writer) error {
	n := 1 << 22
	if cfg.Quick {
		n = 1 << 16
	}
	pOpts := par.Options{Executor: cfg.Executor, Scratch: cfg.Scratch}
	if len(cfg.Procs) > 0 {
		pOpts.Procs = cfg.Procs[len(cfg.Procs)-1]
	}
	if cfg.Adaptive {
		pOpts.Adaptive = adapt.Default()
		if pOpts.Procs <= 1 && runtime.GOMAXPROCS(0) == 1 {
			// One-core boxes: give the controller a lattice to tune
			// (the executor's caller participation still completes all
			// slots), otherwise the adapt stats line reads all zero.
			pOpts.Procs = 4
		}
	} else {
		pOpts.SerialCutoff = pipeline.DefaultChunkSize
	}
	hist := make([]int, pipeline.DemoBuckets)
	p := pipeline.New(pipeline.Config{Opts: pOpts}).
		FromFunc(n, pipeline.DemoGen).
		Map(pipeline.DemoMap).
		Filter(pipeline.DemoPred).
		Sort().
		ToHistogram(hist, pipeline.DemoBucket)
	if err := p.Run(); err != nil {
		return err
	}
	s := p.Stats()
	fmt.Fprintf(w, "== streaming pipeline demo — gen→map→filter→sort→histogram, n=%d\n", n)
	for _, st := range s.Stages {
		fmt.Fprintf(w, "  stage %-10s chunks=%-6d elems=%-9d busy=%s\n",
			st.Name, st.Chunks, st.Elems, st.Busy.Round(time.Microsecond))
	}
	fmt.Fprintf(w, "pipeline: elems=%d chunks=%d wall=%s throughput=%.1f Melems/s occupancy=%.2f\n",
		s.SourceElems, s.Chunks, s.Wall.Round(time.Microsecond),
		s.Throughput()/1e6, s.Occupancy)
	return nil
}

// serveFront is the request surface the serve demo drives — satisfied
// by both the single serve.Server and the sharded serve.Sharded, so
// one traffic loop exercises whichever -shards selected.
type serveFront interface {
	Sort(tenant string, xs []int64) error
	Histogram(tenant string, hist []int, xs []int64, bucket func(int64) int) error
	Scan(tenant string, dst, xs []int64) error
	Sum(tenant string, xs []int64) (int64, error)
	CallDelta(tenant string, k *kernel.Kernel, a *kernel.Args, d *kernel.Delta) error
	BumpGeneration(tenant string) uint64
	TenantStats() []serve.TenantStats
}

// demoFront bundles whichever server flavor a -serve demo built, with
// the bits both the closed-loop and open-loop drivers need.
type demoFront struct {
	front   serveFront
	single  *serve.Server
	sharded *serve.Sharded
	workers int
	scfg    serve.Config
	// Wire mode: wl is the loopback listener (nil against a remote
	// parserve, and in plain in-process mode), wf the client pool the
	// demo traffic runs through.
	wl *wire.Listener
	wf *wireFront
}

// buildServeFront constructs a demo server: one batched Server, or a
// sharded group when shards > 0 (tenants hash to home shards, the
// diffusive balancer migrates backlog; each shard owns its executor
// and scratch pool, so cfg.Executor is unused there). slo threads the
// deadline budget into the admission ladder; maxQueue overrides the
// per-tenant queue bound (0 = serve's default). A non-empty wireAddr
// reroutes the demo traffic over the binary wire protocol: "loopback"
// spins an in-process listener on a real TCP socket in front of the
// server just built, any other value targets a running parserve (and
// no local server is built at all — the admission counters live on
// the far side).
func buildServeFront(cfg core.Config, shards int, slo time.Duration, maxQueue int, cacheOn bool, wireAddr string) *demoFront {
	if wireAddr != "" && wireAddr != "loopback" {
		network, addr := wireTarget(wireAddr)
		wf := newWireFront(network, addr, nil)
		return &demoFront{front: wf, wf: wf}
	}
	workers := 4
	if len(cfg.Procs) > 0 {
		workers = cfg.Procs[len(cfg.Procs)-1]
	}
	scfg := serve.Config{
		Executor:       cfg.Executor,
		Scratch:        cfg.Scratch,
		Workers:        workers,
		MaxQueue:       maxQueue,
		PipelineCutoff: 1 << 15, // the demos' "long request" threshold
		SLO:            slo,
	}
	if cacheOn {
		// One cache in front of everything; a sharded server's shards
		// all share it (the Config template copies the pointer).
		scfg.Cache = rescache.New(rescache.Config{Pool: cfg.Scratch})
	}
	if cfg.Adaptive {
		scfg.Adaptive = adapt.Default()
	}
	d := &demoFront{workers: workers, scfg: scfg}
	if shards > 0 {
		procs := workers / shards
		if procs < 1 {
			procs = 1
		}
		sc := scfg
		sc.Executor = nil // one executor per shard
		sc.Scratch = nil  // one scratch pool per shard
		sc.Adaptive = nil // AdaptivePerShard gives each shard its own
		sc.Workers = procs
		d.sharded = serve.NewSharded(serve.ShardedConfig{
			Shards:            shards,
			ShardProcs:        procs,
			AdaptivePerShard:  cfg.Adaptive,
			MigrateHysteresis: 2, // small: the demo queues are shallow
			Config:            sc,
		})
		d.front = d.sharded
	} else {
		d.single = serve.New(scfg)
		d.front = d.single
	}
	if wireAddr == "loopback" {
		var backend wire.Backend = d.single
		if d.sharded != nil {
			backend = d.sharded
		}
		wl, err := wire.Listen("tcp", "127.0.0.1:0", backend, wire.Config{})
		if err != nil {
			fatalf("wire: listen: %v", err)
		}
		d.wl = wl
		// The local front stays reachable through the client pool for
		// the surfaces the protocol does not carry.
		d.wf = newWireFront("tcp", wl.Addr().String(), d.front)
		d.front = d.wf
	}
	return d
}

func (d *demoFront) close() {
	if d.wf != nil {
		d.wf.closeClients()
	}
	if d.wl != nil {
		d.wl.Close()
	}
	if d.sharded != nil {
		d.sharded.Close()
	} else if d.single != nil {
		d.single.Close()
	}
}

func (d *demoFront) stats() serve.Stats {
	if d.sharded != nil {
		return d.sharded.Stats().Aggregate
	}
	return d.single.Stats()
}

// printServeStats prints the admission/batching/deadline counters
// line plus, for sharded servers, the migration and per-shard lines.
func (d *demoFront) printServeStats(w io.Writer) {
	if d.wf != nil {
		if d.wl == nil {
			fmt.Fprintf(w, "wire: remote %s %s — admission counters live on the parserve side\n",
				d.wf.network, d.wf.addr)
			return
		}
		ws := d.wl.Stats()
		fmt.Fprintf(w, "wire: loopback %s | conns=%d requests=%d responses=%d chunks=%d errors=%d\n",
			d.wf.addr, ws.Conns, ws.Requests, ws.Responses, ws.Chunks, ws.Errors)
	}
	st := d.stats()
	avg := 0.0
	if st.Batches > 0 {
		avg = float64(st.BatchedRequests) / float64(st.Batches)
	}
	fmt.Fprintf(w, "serve: accepted=%d completed=%d rejected=%d | batches=%d reqs/batch=%.1f maxbatch=%d parallel=%d serial=%d | shed=%d degraded=%d pipelined=%d | dlrej=%d expired=%d\n",
		st.Accepted, st.Completed, st.Rejected,
		st.Batches, avg, st.MaxBatch, st.ParallelBatches, st.SerialBatches,
		st.Shed, st.Degraded, st.Pipelined, st.DeadlineRejected, st.Expired)
	if c := d.scfg.Cache; c != nil {
		cs := c.Stats()
		hitRate := 0.0
		if st.CacheHits+st.CacheMisses > 0 {
			hitRate = float64(st.CacheHits) / float64(st.CacheHits+st.CacheMisses)
		}
		fmt.Fprintf(w, "cache: hits=%d misses=%d hitrate=%.2f | entries=%d bytes=%d inserts=%d evictions=%d invalidations=%d\n",
			st.CacheHits, st.CacheMisses, hitRate,
			cs.Entries, cs.Bytes, cs.Inserts, cs.Evictions, cs.Invalidations)
	}
	if d.sharded != nil {
		sst := d.sharded.Stats()
		fmt.Fprintf(w, "shards: migrations=%d migrated=%d\n", sst.Migrations, sst.Migrated)
		for i, ss := range sst.PerShard {
			fmt.Fprintf(w, "shard %d: accepted=%-6d completed=%-6d batches=%-5d migrated in=%-4d out=%-4d occupancy=%.2f\n",
				i, ss.Accepted, ss.Completed, ss.Batches, ss.MigratedIn, ss.MigratedOut,
				d.sharded.Executors().ShardOccupancy(i))
		}
	}
}

// demoTenants is the demo traffic mix: 14 slots over 4 tenants, "hot"
// holding 8 of them and t1..t3 two each.
var demoTenants = []string{
	"hot", "hot", "hot", "hot", "hot", "hot", "hot", "hot",
	"t1", "t1", "t2", "t2", "t3", "t3",
}

// demoTenantNames are the distinct names of demoTenants, in print
// order; demoTenantIdx maps a name back to its slot for the per-tenant
// retry counters.
var demoTenantNames = []string{"hot", "t1", "t2", "t3"}

func demoTenantIdx(name string) int {
	for i, n := range demoTenantNames {
		if n == name {
			return i
		}
	}
	return 0
}

// demoPayload derives the demo's shared 2K-element request payload.
func demoPayload(n int, seed uint64) []int64 {
	base := make([]int64, n)
	for i := range base {
		base[i] = int64((uint64(i)*2654435761 + seed) % 100003)
	}
	return base
}

// runServeDemo drives closed-loop multi-tenant request traffic — one
// hot tenant with 8 clients and three light tenants with 2 each,
// issuing mixed 2K-element sort/histogram/scan/sum requests plus an
// occasional long sort that routes through the streaming pipeline —
// through the request-serving runtime, then prints the server's
// admission/batching counters, client-observed latency percentiles,
// request throughput, and the per-tenant fair-share split. Rejected
// requests are retried under capped exponential backoff with rng
// jitter (a fixed sleep would wake every backpressured client in
// lockstep and re-flood the door); unexpected errors are counted and
// reported rather than silently shrinking the sample, so the printed
// percentiles' denominator is every issued request. With shards > 0
// the traffic runs through the sharded server instead and per-shard
// stats lines are printed. It honors the -executor, -scratch, -adapt,
// -procs and -quick flags through cfg. Closed-loop percentiles
// understate the tail under saturation (coordinated omission): the
// -openloop mode exists to print the honest number.
// With cacheOn the result cache fronts the server (most of the demo's
// repeated-payload requests become hits) and with deltaOn each client
// additionally maintains a standing sorted record through CallDelta
// appends — the incremental path — instead of re-sorting from scratch.
func runServeDemo(cfg core.Config, shards int, slo time.Duration, cacheOn, deltaOn bool, wireAddr string, w io.Writer) error {
	// Small queue bound: lets the hot tenant's backpressure show.
	d := buildServeFront(cfg, shards, slo, 4, cacheOn, wireAddr)
	defer d.close()
	srv := d.front

	total := 20000
	if cfg.Quick {
		total = 2000
	}
	const n = 2048
	seed := cfg.Seed
	if seed == 0 {
		seed = 42
	}
	base := demoPayload(n, seed)
	const backoffMin, backoffMax = 20 * time.Microsecond, 2 * time.Millisecond
	var next atomic.Int64
	var retried, errored, deadlined, deltas atomic.Int64
	tenantRetries := make([]atomic.Int64, len(demoTenantNames))
	lats := make([][]float64, len(demoTenants))
	var wg sync.WaitGroup
	start := time.Now()
	for c, tenant := range demoTenants {
		wg.Add(1)
		go func(c int, tenant string) {
			defer wg.Done()
			rg := rng.New(seed + uint64(c))
			xs := make([]int64, n)
			dst := make([]int64, n)
			hist := make([]int, 1024)
			var big []int64 // lazily sized for the occasional long sort
			bucket := func(v int64) int { return int(uint64(v) % 1024) }
			tIdx := demoTenantIdx(tenant)
			backoff := backoffMin
			// Standing-query state for -delta traffic: a sorted record
			// this client grows through CallDelta appends, re-seeded
			// (full sort) whenever it outgrows its budget.
			kSort := kernel.MustLookup("sort")
			var standing kernel.Args
			chunk := make([]int64, 16)
			for {
				i := int(next.Add(1)) - 1
				if i >= total {
					return
				}
				if cacheOn && i == total/2 {
					// Midway, one tenant's data "changes": its cached
					// entries die at once and the invalidations
					// counter in the stats line goes live.
					srv.BumpGeneration("t2")
				}
				copy(xs, base)
				t0 := time.Now()
				for {
					var err error
					switch {
					case deltaOn && i%8 == 5:
						if len(standing.Xs) == 0 || len(standing.Xs) > 4*n {
							standing.Xs = append(standing.Xs[:0], base...)
							if err = srv.Sort(tenant, standing.Xs); err != nil {
								standing.Xs = standing.Xs[:0] // not sorted; re-seed on retry
								break
							}
						}
						for j := range chunk {
							chunk[j] = int64(rg.Uint64n(100003))
						}
						err = srv.CallDelta(tenant, kSort, &standing, &kernel.Delta{Append: chunk})
						if err == nil {
							deltas.Add(1)
						}
					case i%512 == 511:
						if big == nil {
							big = make([]int64, d.scfg.PipelineCutoff)
						}
						for j := range big {
							big[j] = base[j%n]
						}
						err = srv.Sort(tenant, big)
					case i%4 == 0:
						err = srv.Sort(tenant, xs)
					case i%4 == 1:
						err = srv.Histogram(tenant, hist, xs, bucket)
					case i%4 == 2:
						err = srv.Scan(tenant, dst, xs)
					default:
						_, err = srv.Sum(tenant, xs)
					}
					if errors.Is(err, serve.ErrRejected) || errors.Is(err, serve.ErrDeadlineExceeded) {
						// Backpressure: back off and retry the same
						// request — the latency sample keeps accruing,
						// so the tail reflects the retries. Capped
						// exponential with equal jitter: half the
						// window is deterministic, half uniform, so
						// backpressured clients fan out instead of
						// waking in lockstep and re-flooding the door.
						retried.Add(1)
						tenantRetries[tIdx].Add(1)
						if errors.Is(err, serve.ErrDeadlineExceeded) {
							deadlined.Add(1)
						}
						time.Sleep(backoff/2 + time.Duration(rg.Uint64n(uint64(backoff)/2+1)))
						if backoff *= 2; backoff > backoffMax {
							backoff = backoffMax
						}
						continue
					}
					if err != nil {
						// Count and move on: a dying client would
						// silently shrink the sample and flatter every
						// percentile printed below.
						errored.Add(1)
						break
					}
					backoff = backoffMin
					lats[c] = append(lats[c], time.Since(t0).Seconds())
					break
				}
			}
		}(c, tenant)
	}
	wg.Wait()
	wall := time.Since(start)

	var all []float64
	for _, l := range lats {
		all = append(all, l...)
	}
	switch {
	case d.sharded != nil:
		fmt.Fprintf(w, "== request-serving traffic demo — 4 tenants (hot ×8 clients, t1..t3 ×2), %d shards × W=%d, %d requests\n",
			d.sharded.Shards(), d.sharded.Executors().Shard(0).Procs(), total)
	case d.single != nil:
		fmt.Fprintf(w, "== request-serving traffic demo — 4 tenants (hot ×8 clients, t1..t3 ×2), W=%d, %d requests\n",
			d.workers, total)
	default:
		fmt.Fprintf(w, "== request-serving traffic demo — 4 tenants (hot ×8 clients, t1..t3 ×2), remote server, %d requests\n",
			total)
	}
	d.printServeStats(w)
	fmt.Fprintf(w, "clients: issued=%d ok=%d errored=%d retried=%d (hot=%d t1=%d t2=%d t3=%d) deadline-refused=%d",
		total, len(all), errored.Load(), retried.Load(),
		tenantRetries[0].Load(), tenantRetries[1].Load(),
		tenantRetries[2].Load(), tenantRetries[3].Load(), deadlined.Load())
	if deltaOn {
		fmt.Fprintf(w, " delta-updates=%d", deltas.Load())
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "latency: p50=%s p95=%s p99=%s | throughput=%.0f req/s over %s\n",
		perf.FormatDuration(perf.Percentile(all, 50)),
		perf.FormatDuration(perf.Percentile(all, 95)),
		perf.FormatDuration(perf.Percentile(all, 99)),
		float64(len(all))/wall.Seconds(), wall.Round(time.Millisecond))
	printTenantStats(w, srv)
	if len(all) == 0 {
		// Errored clients keep serving so the denominator stays
		// honest, but a run where *nothing* succeeded is a dead
		// server, not a demo — exiting 0 here would let a CI smoke
		// against an unreachable backend pass silently.
		return fmt.Errorf("no request succeeded (%d issued, %d errored) — backend unreachable or every call failed", total, errored.Load())
	}
	return nil
}

// printTenantStats prints the per-tenant fair-share split including
// the deadline counters.
func printTenantStats(w io.Writer, srv serveFront) {
	for _, ts := range srv.TenantStats() {
		fmt.Fprintf(w, "tenant %-4s accepted=%-6d completed=%-6d rejected=%-5d dlrej=%-5d expired=%-3d cachehits=%d\n",
			ts.Name, ts.Accepted, ts.Completed, ts.Rejected, ts.DeadlineRejected, ts.Expired, ts.CacheHits)
	}
}

// runOpenLoopDemo drives the same tenant mix through the server from
// a fixed open-loop arrival schedule (internal/loadgen): requests
// fire at their scheduled instants whether or not earlier ones have
// finished, so a stalled batch cannot slow the offered load down, and
// every sample carries two latencies — uncorrected (send→done, what a
// closed-loop client would have measured) and corrected
// (intended-arrival→done, charging queue delay to the system). Both
// percentile rows are printed side by side; the corrected row is the
// honest one and the gap between them is the coordinated-omission
// error made visible. Open-loop clients never retry: a rejected or
// deadline-refused arrival is an error by design, counted in the
// clients line. The queue bound stays at serve's default so queueing
// (the thing the corrected clock exists to see) is not clipped by the
// demo's backpressure setting.
func runOpenLoopDemo(cfg core.Config, shards int, rate float64, poisson bool, slo time.Duration, cacheOn bool, wireAddr string, w io.Writer) error {
	d := buildServeFront(cfg, shards, slo, 0, cacheOn, wireAddr)
	defer d.close()
	srv := d.front

	total := 20000
	if cfg.Quick {
		total = 2000
	}
	const n = 2048
	seed := cfg.Seed
	if seed == 0 {
		seed = 42
	}
	base := demoPayload(n, seed)

	arrival := "const"
	var sched loadgen.Schedule
	if poisson {
		arrival = "poisson"
		sched = loadgen.Poisson(total, rate, seed)
	} else {
		sched = loadgen.Constant(total, rate)
	}
	// Open-loop arrivals overlap, so in-flight requests each need
	// their own payload buffers (harness overhead, pooled).
	type bufs struct {
		xs, dst []int64
		hist    []int
	}
	pool := sync.Pool{New: func() any {
		return &bufs{xs: make([]int64, n), dst: make([]int64, n), hist: make([]int, 1024)}
	}}
	bucket := func(v int64) int { return int(uint64(v) % 1024) }
	res := loadgen.Run(sched, func(i int) error {
		bf := pool.Get().(*bufs)
		defer pool.Put(bf)
		copy(bf.xs, base)
		tenant := demoTenants[i%len(demoTenants)]
		switch i % 4 {
		case 0:
			return srv.Sort(tenant, bf.xs)
		case 1:
			return srv.Histogram(tenant, bf.hist, bf.xs, bucket)
		case 2:
			return srv.Scan(tenant, bf.dst, bf.xs)
		default:
			_, err := srv.Sum(tenant, bf.xs)
			return err
		}
	})

	rep := res.Summarize(sched)
	rejected := res.Failed(func(err error) bool { return errors.Is(err, serve.ErrRejected) })
	deadlined := res.Failed(func(err error) bool { return errors.Is(err, serve.ErrDeadlineExceeded) })
	other := rep.Errors - rejected - deadlined
	switch {
	case d.sharded != nil:
		fmt.Fprintf(w, "== open-loop serving demo — 4 tenants (hot-weighted), %d shards × W=%d, %d arrivals at %.0f req/s (%s), slo=%v\n",
			d.sharded.Shards(), d.sharded.Executors().Shard(0).Procs(), total, rate, arrival, slo)
	case d.single != nil:
		fmt.Fprintf(w, "== open-loop serving demo — 4 tenants (hot-weighted), W=%d, %d arrivals at %.0f req/s (%s), slo=%v\n",
			d.workers, total, rate, arrival, slo)
	default:
		fmt.Fprintf(w, "== open-loop serving demo — 4 tenants (hot-weighted), remote server, %d arrivals at %.0f req/s (%s), slo=%v\n",
			total, rate, arrival, slo)
	}
	d.printServeStats(w)
	fmt.Fprintf(w, "clients: sent=%d ok=%d rejected=%d deadline-refused=%d errors=%d | offered=%.0f req/s achieved=%.0f req/s over %s\n",
		rep.Sent, rep.OK, rejected, deadlined, other,
		rep.OfferedRate, rep.AchievedRate, res.Wall.Round(time.Millisecond))
	fmt.Fprintf(w, "latency (uncorrected, send->done):    p50=%s p95=%s p99=%s\n",
		perf.FormatDuration(rep.UncorrectedP50),
		perf.FormatDuration(rep.UncorrectedP95),
		perf.FormatDuration(rep.UncorrectedP99))
	fmt.Fprintf(w, "latency (corrected, intended->done):  p50=%s p95=%s p99=%s  <- the honest tail\n",
		perf.FormatDuration(rep.CorrectedP50),
		perf.FormatDuration(rep.CorrectedP95),
		perf.FormatDuration(rep.CorrectedP99))
	printTenantStats(w, srv)
	if rep.OK == 0 {
		// Same dead-backend guard as the closed-loop demo: percentile
		// rows over zero samples prove nothing, and a CI smoke against
		// an unreachable server must fail, not print empty stats.
		return fmt.Errorf("no arrival succeeded (%d sent, %d rejected, %d errors) — backend unreachable or every call failed", rep.Sent, rejected, other)
	}
	return nil
}

// executorFor resolves the -executor flag mode; unknown values are an
// error, never a silent default.
func executorFor(mode string) (*exec.Executor, error) {
	switch mode {
	case "pooled", "":
		return nil, nil // nil = the shared process-wide pool
	case "dedicated":
		return exec.New(0), nil
	case "spawn":
		return exec.NewSpawning(), nil
	}
	return nil, fmt.Errorf("bad -executor %q: want pooled, dedicated, or spawn", mode)
}

// scratchFor resolves the -scratch flag mode.
func scratchFor(mode string) (*scratch.Pool, error) {
	switch mode {
	case "on", "":
		return nil, nil // nil = the shared process-wide scratch pool
	case "off":
		return scratch.Off, nil
	}
	return nil, fmt.Errorf("bad -scratch %q: want on or off", mode)
}

// cacheFor resolves the -cache flag mode; unknown values are an
// error, never a silent default.
func cacheFor(mode string) (bool, error) {
	switch mode {
	case "on":
		return true, nil
	case "off", "":
		return false, nil
	}
	return false, fmt.Errorf("bad -cache %q: want on or off", mode)
}

// deltaFor resolves the -delta flag mode.
func deltaFor(mode string) (bool, error) {
	switch mode {
	case "on":
		return true, nil
	case "off", "":
		return false, nil
	}
	return false, fmt.Errorf("bad -delta %q: want on or off", mode)
}

// arrivalFor resolves the -arrival flag mode into "poisson?".
func arrivalFor(mode string) (bool, error) {
	switch mode {
	case "poisson", "":
		return true, nil
	case "const":
		return false, nil
	}
	return false, fmt.Errorf("bad -arrival %q: want const or poisson", mode)
}

// adaptFor resolves the -adapt flag mode.
func adaptFor(mode string) (bool, error) {
	switch mode {
	case "on":
		return true, nil
	case "off", "":
		return false, nil
	}
	return false, fmt.Errorf("bad -adapt %q: want on or off", mode)
}

// printRuntimeStats reports the executor's steal counters alongside
// the scratch pool's reuse gauges — and, with -adapt=on, the tuning
// controller's counters — so one run shows every half of the runtime's
// behavior: how work moved between workers, how buffer memory was
// recycled, and how the parameter cache filled and converged.
func printRuntimeStats(cfg core.Config) {
	e := cfg.Executor
	if e == nil {
		e = exec.Default()
	}
	sp := cfg.Scratch
	if sp == nil {
		sp = scratch.Default()
	}
	st := sp.Stats()
	fmt.Printf("runtime: steals=%d attempts=%d | scratch: hits=%d misses=%d bypasses=%d live=%s pooled=%s\n",
		e.Steals(), e.StealAttempts(),
		st.Hits, st.Misses, st.Bypasses, fmtBytes(st.BytesLive), fmtBytes(st.BytesPooled))
	if cfg.Adaptive {
		at := adapt.Default().Stats()
		fmt.Printf("adapt: sites=%d classes=%d decisions=%d explorations=%d degraded=%d converged=%d\n",
			at.Sites, at.Classes, at.Decisions, at.Explorations, at.Degraded, at.Converged)
	}
}

func fmtBytes(b int64) string {
	switch {
	case b >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(b)/(1<<10))
	default:
		return fmt.Sprintf("%dB", b)
	}
}

func selectIDs(flagVal string) []string {
	if flagVal == "all" {
		ids := make([]string, len(core.Experiments))
		for i, e := range core.Experiments {
			ids[i] = e.ID
		}
		return ids
	}
	var ids []string
	for _, s := range strings.Split(flagVal, ",") {
		if s = strings.TrimSpace(s); s != "" {
			ids = append(ids, s)
		}
	}
	return ids
}

func parseInts(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, err
		}
		if v < 1 {
			return nil, fmt.Errorf("count %d < 1", v)
		}
		out = append(out, v)
	}
	return out, nil
}

func writeCSV(dir, id string, t *perf.Table) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, id+".csv"))
	if err != nil {
		return err
	}
	defer f.Close()
	return t.RenderCSV(f)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "parbench: "+format+"\n", args...)
	os.Exit(1)
}

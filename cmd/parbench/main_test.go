package main

import "testing"

func TestParseInts(t *testing.T) {
	got, err := parseInts("1, 2,8")
	if err != nil || len(got) != 3 || got[0] != 1 || got[2] != 8 {
		t.Fatalf("parseInts = %v, %v", got, err)
	}
	if out, err := parseInts(""); err != nil || out != nil {
		t.Fatalf("empty: %v, %v", out, err)
	}
	if _, err := parseInts("x"); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := parseInts("0"); err == nil {
		t.Fatal("zero accepted")
	}
}

func TestSelectIDs(t *testing.T) {
	all := selectIDs("all")
	if len(all) != 21 {
		t.Fatalf("all = %v", all)
	}
	some := selectIDs(" E1 ,E5,")
	if len(some) != 2 || some[0] != "E1" || some[1] != "E5" {
		t.Fatalf("some = %v", some)
	}
	if len(selectIDs(",")) != 0 {
		t.Fatal("empty selection")
	}
}

package main

import (
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/scratch"
)

// TestFlagModesRejectUnknownValues pins the CLI contract: a mistyped
// mode value (e.g. -scratch=maybe) must produce a usage error, not a
// silent fall-back to the default behavior.
func TestFlagModesRejectUnknownValues(t *testing.T) {
	for _, bad := range []string{"maybe", "ON", "1", "true", " on"} {
		if _, err := scratchFor(bad); err == nil {
			t.Errorf("scratchFor(%q) accepted", bad)
		}
		if _, err := adaptFor(bad); err == nil {
			t.Errorf("adaptFor(%q) accepted", bad)
		}
		if _, err := executorFor(bad); err == nil {
			t.Errorf("executorFor(%q) accepted", bad)
		}
		if _, err := arrivalFor(bad); err == nil {
			t.Errorf("arrivalFor(%q) accepted", bad)
		}
		if _, err := cacheFor(bad); err == nil {
			t.Errorf("cacheFor(%q) accepted", bad)
		}
		if _, err := deltaFor(bad); err == nil {
			t.Errorf("deltaFor(%q) accepted", bad)
		}
	}
}

func TestFlagModesAcceptKnownValues(t *testing.T) {
	if p, err := scratchFor("on"); err != nil || p != nil {
		t.Errorf("scratchFor(on) = %v, %v", p, err)
	}
	if p, err := scratchFor("off"); err != nil || p != scratch.Off {
		t.Errorf("scratchFor(off) = %v, %v", p, err)
	}
	if on, err := adaptFor("on"); err != nil || !on {
		t.Errorf("adaptFor(on) = %v, %v", on, err)
	}
	if on, err := adaptFor("off"); err != nil || on {
		t.Errorf("adaptFor(off) = %v, %v", on, err)
	}
	if e, err := executorFor("pooled"); err != nil || e != nil {
		t.Errorf("executorFor(pooled) = %v, %v", e, err)
	}
	// "dedicated" and "spawn" construct pools; just check they resolve.
	for _, mode := range []string{"dedicated", "spawn"} {
		e, err := executorFor(mode)
		if err != nil || e == nil {
			t.Errorf("executorFor(%s) = %v, %v", mode, e, err)
			continue
		}
		e.Close()
	}
	// Arrival defaults to poisson; const is the other accepted process.
	if p, err := arrivalFor(""); err != nil || !p {
		t.Errorf("arrivalFor(\"\") = %v, %v", p, err)
	}
	if p, err := arrivalFor("poisson"); err != nil || !p {
		t.Errorf("arrivalFor(poisson) = %v, %v", p, err)
	}
	if p, err := arrivalFor("const"); err != nil || p {
		t.Errorf("arrivalFor(const) = %v, %v", p, err)
	}
	// Cache and delta default off; "" and "off" are the same answer.
	for _, mode := range []string{"", "off"} {
		if on, err := cacheFor(mode); err != nil || on {
			t.Errorf("cacheFor(%q) = %v, %v", mode, on, err)
		}
		if on, err := deltaFor(mode); err != nil || on {
			t.Errorf("deltaFor(%q) = %v, %v", mode, on, err)
		}
	}
	if on, err := cacheFor("on"); err != nil || !on {
		t.Errorf("cacheFor(on) = %v, %v", on, err)
	}
	if on, err := deltaFor("on"); err != nil || !on {
		t.Errorf("deltaFor(on) = %v, %v", on, err)
	}
}

// TestPipelineDemo smoke-runs the -pipeline mode at quick size and
// checks the stats line appears with non-zero throughput fields.
func TestPipelineDemo(t *testing.T) {
	var buf strings.Builder
	if err := runPipelineDemo(core.Config{Quick: true}, &buf); err != nil {
		t.Fatalf("runPipelineDemo: %v", err)
	}
	out := buf.String()
	if !strings.Contains(out, "pipeline: elems=65536") {
		t.Errorf("stats line missing element count:\n%s", out)
	}
	if !strings.Contains(out, "throughput=") || !strings.Contains(out, "occupancy=") {
		t.Errorf("stats line missing throughput/occupancy:\n%s", out)
	}
	for _, stage := range []string{"source", "map", "filter", "sort", "histogram"} {
		if !strings.Contains(out, "stage "+stage) {
			t.Errorf("per-stage breakdown missing %q:\n%s", stage, out)
		}
	}
}

// TestServeDemo smoke-runs the -serve mode at quick size and checks
// the admission stats, latency percentiles and per-tenant fair-share
// lines appear with every request accounted for.
func TestServeDemo(t *testing.T) {
	var buf strings.Builder
	if err := runServeDemo(core.Config{Quick: true}, 0, 0, false, false, "", &buf); err != nil {
		t.Fatalf("runServeDemo: %v", err)
	}
	out := buf.String()
	if !strings.Contains(out, "completed=2000") {
		t.Errorf("stats line missing completed count:\n%s", out)
	}
	for _, want := range []string{"serve: accepted=", "reqs/batch=", "pipelined=",
		"latency: p50=", "p95=", "p99=", "req/s", "tenant hot", "tenant t1"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

// TestServeDemoSharded smoke-runs the -serve -shards mode and checks
// the per-shard stats lines appear alongside the aggregate, with every
// request accounted for across shards.
func TestServeDemoSharded(t *testing.T) {
	var buf strings.Builder
	if err := runServeDemo(core.Config{Quick: true}, 2, 0, false, false, "", &buf); err != nil {
		t.Fatalf("runServeDemo: %v", err)
	}
	out := buf.String()
	if !strings.Contains(out, "completed=2000") {
		t.Errorf("aggregate line missing completed count:\n%s", out)
	}
	for _, want := range []string{"2 shards", "shards: migrations=",
		"shard 0: accepted=", "shard 1: accepted=", "occupancy=",
		"latency: p50=", "tenant hot"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

// TestOpenLoopDemo smoke-runs the -serve -openloop mode at quick size
// and checks both latency rows (corrected and uncorrected) and the
// offered/achieved rate accounting appear.
func TestOpenLoopDemo(t *testing.T) {
	var buf strings.Builder
	if err := runOpenLoopDemo(core.Config{Quick: true}, 0, 4000, true, 0, false, "", &buf); err != nil {
		t.Fatalf("runOpenLoopDemo: %v", err)
	}
	out := buf.String()
	for _, want := range []string{"open-loop serving demo", "(poisson)",
		"sent=2000", "offered=", "achieved=",
		"latency (uncorrected", "latency (corrected", "honest tail",
		"serve: accepted=", "dlrej=", "tenant hot"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

// TestOpenLoopDemoConstSharded covers the const-arrival schedule and
// the sharded server in one smoke: the per-shard lines must coexist
// with the corrected/uncorrected rows.
func TestOpenLoopDemoConstSharded(t *testing.T) {
	var buf strings.Builder
	if err := runOpenLoopDemo(core.Config{Quick: true}, 2, 4000, false, 0, false, "", &buf); err != nil {
		t.Fatalf("runOpenLoopDemo: %v", err)
	}
	out := buf.String()
	for _, want := range []string{"2 shards", "(const)", "shard 0: accepted=",
		"latency (corrected"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

// TestServeDemoWithSLO smoke-runs the closed-loop demo with a deadline
// budget: the run must still drain (retries absorb refusals) and the
// deadline counters must be reported.
func TestServeDemoWithSLO(t *testing.T) {
	var buf strings.Builder
	if err := runServeDemo(core.Config{Quick: true}, 0, 50*time.Millisecond, false, false, "", &buf); err != nil {
		t.Fatalf("runServeDemo: %v", err)
	}
	out := buf.String()
	for _, want := range []string{"dlrej=", "expired=", "deadline-refused=", "retried="} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

// TestServeDemoWithCache smoke-runs the closed-loop demo with the
// result cache fronting the server: repeated payloads must actually
// hit, and the cache stats line must be printed.
func TestServeDemoWithCache(t *testing.T) {
	var buf strings.Builder
	if err := runServeDemo(core.Config{Quick: true}, 0, 0, true, false, "", &buf); err != nil {
		t.Fatalf("runServeDemo: %v", err)
	}
	out := buf.String()
	for _, want := range []string{"cache: hits=", "hitrate=", "invalidations=", "cachehits="} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "cache: hits=0 ") {
		t.Errorf("demo's repeated payloads never hit the cache:\n%s", out)
	}
	if strings.Contains(out, "invalidations=0\n") {
		t.Errorf("mid-run generation bump never invalidated anything:\n%s", out)
	}
}

// TestServeDemoWithCacheAndDelta smoke-runs the full -cache -delta
// mix, sharded, and checks the standing-query traffic is counted.
func TestServeDemoWithCacheAndDelta(t *testing.T) {
	var buf strings.Builder
	if err := runServeDemo(core.Config{Quick: true}, 2, 0, true, true, "", &buf); err != nil {
		t.Fatalf("runServeDemo: %v", err)
	}
	out := buf.String()
	for _, want := range []string{"cache: hits=", "delta-updates=", "2 shards"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "delta-updates=0") {
		t.Errorf("delta traffic never ran:\n%s", out)
	}
}

// TestOpenLoopDemoWithCache covers the open-loop driver with the
// cache on (delta stays closed-loop-only by flag validation).
func TestOpenLoopDemoWithCache(t *testing.T) {
	var buf strings.Builder
	if err := runOpenLoopDemo(core.Config{Quick: true}, 0, 4000, true, 0, true, "", &buf); err != nil {
		t.Fatalf("runOpenLoopDemo: %v", err)
	}
	out := buf.String()
	for _, want := range []string{"cache: hits=", "latency (corrected"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

// TestServeDemoWire smoke-runs the closed-loop demo over the loopback
// wire listener: the same traffic crosses a real TCP socket, so the
// listener's frame counters appear next to the admission stats and
// every request still drains.
func TestServeDemoWire(t *testing.T) {
	var buf strings.Builder
	if err := runServeDemo(core.Config{Quick: true}, 0, 0, false, false, "loopback", &buf); err != nil {
		t.Fatalf("runServeDemo: %v", err)
	}
	out := buf.String()
	for _, want := range []string{"wire: loopback", "conns=", "responses=",
		"serve: accepted=", "completed=2000", "tenant hot"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

// TestOpenLoopDemoWireSharded covers the open-loop driver over the
// loopback listener in front of a sharded server — the full remote
// stack: socket, listener, shard routing, corrected percentiles.
func TestOpenLoopDemoWireSharded(t *testing.T) {
	var buf strings.Builder
	if err := runOpenLoopDemo(core.Config{Quick: true}, 2, 4000, false, 0, false, "loopback", &buf); err != nil {
		t.Fatalf("runOpenLoopDemo: %v", err)
	}
	out := buf.String()
	for _, want := range []string{"wire: loopback", "2 shards", "latency (corrected"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestParseInts(t *testing.T) {
	got, err := parseInts("1, 2,8")
	if err != nil || len(got) != 3 || got[0] != 1 || got[2] != 8 {
		t.Fatalf("parseInts = %v, %v", got, err)
	}
	if out, err := parseInts(""); err != nil || out != nil {
		t.Fatalf("empty: %v, %v", out, err)
	}
	if _, err := parseInts("x"); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := parseInts("0"); err == nil {
		t.Fatal("zero accepted")
	}
}

func TestSelectIDs(t *testing.T) {
	all := selectIDs("all")
	if len(all) != 28 {
		t.Fatalf("all = %v", all)
	}
	some := selectIDs(" E1 ,E5,")
	if len(some) != 2 || some[0] != "E1" || some[1] != "E5" {
		t.Fatalf("some = %v", some)
	}
	if len(selectIDs(",")) != 0 {
		t.Fatal("empty selection")
	}
}

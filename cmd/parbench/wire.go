package main

import (
	"errors"
	"fmt"
	"strings"
	"sync"

	"repro/internal/kernel"
	"repro/internal/serve"
	"repro/internal/wire"
)

// wireTarget resolves the -wire flag into a dial target. "loopback"
// means the demo spins its own listener on a real TCP socket (the CI
// smoke path); "unix:PATH" and "host:port" target a running parserve.
func wireTarget(flagVal string) (network, addr string) {
	if p, ok := strings.CutPrefix(flagVal, "unix:"); ok {
		return "unix", p
	}
	return "tcp", flagVal
}

// wireFront adapts a pool of wire clients to the serveFront surface,
// so the existing closed-loop and open-loop demo drivers run
// unchanged over a socket. Each concurrent request borrows a client
// (one connection, serialized round trips) from the freelist, dialing
// a new one when all are busy — connection count scales with
// concurrency exactly as the listener is designed for. In loopback
// mode local holds the in-process server behind the listener, so the
// surfaces the protocol does not carry (BumpGeneration, TenantStats)
// still work; against a remote parserve they are unavailable and the
// flag guards in main keep the demos off them.
type wireFront struct {
	network, addr string
	local         serveFront

	kSort, kHist, kScan, kSum *kernel.Kernel

	mu   sync.Mutex
	free []*wire.Client
}

func newWireFront(network, addr string, local serveFront) *wireFront {
	return &wireFront{
		network: network, addr: addr, local: local,
		kSort: kernel.MustLookup("sort"),
		kHist: kernel.MustLookup("histogram"),
		kScan: kernel.MustLookup("scan"),
		kSum:  kernel.MustLookup("sum"),
	}
}

func (f *wireFront) get() (*wire.Client, error) {
	f.mu.Lock()
	if n := len(f.free); n > 0 {
		cl := f.free[n-1]
		f.free = f.free[:n-1]
		f.mu.Unlock()
		return cl, nil
	}
	f.mu.Unlock()
	return wire.Dial(f.network, f.addr)
}

// put returns a client to the freelist — unless err says the
// connection itself is suspect. Admission errors (rejected, deadline,
// closed) arrive as error frames on an intact stream and keep the
// client; anything else could have left the stream mid-frame.
func (f *wireFront) put(cl *wire.Client, err error) {
	if err != nil && !errors.Is(err, serve.ErrRejected) &&
		!errors.Is(err, serve.ErrDeadlineExceeded) && !errors.Is(err, serve.ErrClosed) {
		cl.Close()
		return
	}
	f.mu.Lock()
	f.free = append(f.free, cl)
	f.mu.Unlock()
}

func (f *wireFront) call(fn func(cl *wire.Client) error) error {
	cl, err := f.get()
	if err != nil {
		return fmt.Errorf("wire: dial: %w", err)
	}
	err = fn(cl)
	f.put(cl, err)
	return err
}

func (f *wireFront) closeClients() {
	f.mu.Lock()
	free := f.free
	f.free = nil
	f.mu.Unlock()
	for _, cl := range free {
		cl.Close()
	}
}

func (f *wireFront) Sort(tenant string, xs []int64) error {
	a := kernel.Args{Xs: xs}
	return f.call(func(cl *wire.Client) error { return cl.Call(tenant, f.kSort, &a) })
}

func (f *wireFront) Histogram(tenant string, hist []int, xs []int64, bucket func(int64) int) error {
	a := kernel.Args{Xs: xs, Hist: hist, Bucket: bucket}
	return f.call(func(cl *wire.Client) error { return cl.Call(tenant, f.kHist, &a) })
}

func (f *wireFront) Scan(tenant string, dst, xs []int64) error {
	a := kernel.Args{Xs: xs, Dst: dst}
	return f.call(func(cl *wire.Client) error { return cl.Call(tenant, f.kScan, &a) })
}

func (f *wireFront) Sum(tenant string, xs []int64) (int64, error) {
	a := kernel.Args{Xs: xs}
	err := f.call(func(cl *wire.Client) error { return cl.Call(tenant, f.kSum, &a) })
	return a.Out, err
}

func (f *wireFront) CallDelta(tenant string, k *kernel.Kernel, a *kernel.Args, d *kernel.Delta) error {
	return f.call(func(cl *wire.Client) error { return cl.CallDelta(tenant, k, a, d) })
}

// BumpGeneration is not part of the wire protocol; in loopback mode
// it reaches the in-process server directly. The -cache flag guard
// keeps remote demos from ever calling it.
func (f *wireFront) BumpGeneration(tenant string) uint64 {
	if f.local != nil {
		return f.local.BumpGeneration(tenant)
	}
	return 0
}

// TenantStats is server-side state; nil against a remote server (the
// per-tenant lines are simply not printed).
func (f *wireFront) TenantStats() []serve.TenantStats {
	if f.local != nil {
		return f.local.TenantStats()
	}
	return nil
}

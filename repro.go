// Package repro is a Go reproduction of "Engineering Parallel Algorithms"
// (HPDC 1996): a parallel algorithm engineering toolkit — scheduling
// primitives, abstract machine models, a simulated BSP machine, workload
// generators and an experiment harness — together with the classic
// case-study kernels (scan, sorting, list ranking, graph connectivity,
// MST, matmul, stencil) engineered against sequential baselines.
//
// This top-level package is a thin facade over the internal packages so
// downstream users get one import path for the common operations; the
// full surface lives in internal/* and is documented there. See README.md
// for a tour and DESIGN.md for the system inventory.
package repro

import (
	"io"

	"repro/internal/adapt"
	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/kernel"
	"repro/internal/machine"
	"repro/internal/par"
	"repro/internal/perf"
	"repro/internal/pgraph"
	"repro/internal/pipeline"
	"repro/internal/plist"
	"repro/internal/pmat"
	"repro/internal/psel"
	"repro/internal/psort"
	"repro/internal/pstencil"
	"repro/internal/rescache"
	"repro/internal/scratch"
	"repro/internal/seq"
	"repro/internal/serve"
	"repro/internal/wire"
)

// Re-exported types. Aliases keep the facade zero-cost: values flow to
// and from the internal packages without conversion.
type (
	// Options configures parallel primitives (workers, schedule, grain).
	Options = par.Options
	// Policy selects a loop schedule (Static, Cyclic, Dynamic, Guided).
	Policy = par.Policy
	// Graph is a CSR undirected graph.
	Graph = graph.Graph
	// Edge is an undirected weighted edge.
	Edge = graph.Edge
	// List is an array-embedded linked list for list ranking.
	List = gen.List
	// Matrix is a dense row-major matrix.
	Matrix = gen.Matrix
	// Grid is a square scalar field for stencil kernels.
	Grid = gen.Grid
	// WorkDepth is a PRAM work/span cost.
	WorkDepth = machine.WorkDepth
	// BSPParams are Bulk-Synchronous Parallel machine parameters.
	BSPParams = machine.BSPParams
	// Table is an experiment result table.
	Table = perf.Table
	// ExperimentConfig scales the experiment suite.
	ExperimentConfig = core.Config
	// Executor is a persistent worker pool; every parallel primitive
	// and kernel dispatches onto one (the shared process-wide pool by
	// default). Pin a dedicated pool via Options.Executor to isolate a
	// workload's parallelism in a long-lived server.
	Executor = exec.Executor
	// ScratchPool is a size-class pool of reusable kernel temporaries;
	// every kernel draws scratch from one (the shared process-wide pool
	// by default). Pin a dedicated pool via Options.Scratch, or set
	// Options.Scratch = ScratchOff to disable reuse.
	ScratchPool = scratch.Pool
	// ScratchStats is a snapshot of a scratch pool's reuse counters.
	ScratchStats = scratch.Stats
	// AdaptiveController is the online load-aware tuning runtime: it
	// picks grain, schedule policy, worker count and serial cutoffs
	// per call site and input-size class, seeded from the machine
	// model and refined from timing feedback, shedding parallelism
	// when the executor is busy. Enable it with Adaptive() or by
	// setting Options.Adaptive.
	AdaptiveController = adapt.Controller
	// AdaptiveStats is a snapshot of a controller's tuning counters.
	AdaptiveStats = adapt.Stats
	// Pipeline is a chunked streaming dataflow: a source, a chain of
	// transforms (Map, Filter, Sort, TopK, RunningSum, Tee) and a sink,
	// processing the stream in cache-sized scratch-pooled chunks on
	// bounded queues instead of materializing arrays between kernels.
	// Build one with NewPipeline.
	Pipeline = pipeline.Pipeline
	// PipelineConfig shapes a Pipeline (chunk size, queue depth, and
	// the kernel Options its stages run under).
	PipelineConfig = pipeline.Config
	// PipelineStats is a snapshot of a pipeline's per-stage counters,
	// wall time, throughput and sampled executor occupancy.
	PipelineStats = pipeline.Stats
	// Server is the multi-tenant request-serving runtime: it coalesces
	// concurrent small requests into fused batched kernel invocations
	// (one pooled fork/join per batch instead of one per request),
	// applies occupancy-driven admission control (queue, shed to
	// serial, reject with backpressure), and forms batches round-robin
	// across tenants so a hot tenant cannot starve the rest. Build one
	// with NewServer.
	Server = serve.Server
	// ServerConfig shapes a Server (worker count, batch bounds and
	// window, per-tenant queue bound, load thresholds, pipeline
	// cutoff, the per-request SLO deadline budget, an optional
	// ResultCache fronting admission, and the executor/scratch/
	// adaptive runtimes it serves on).
	ServerConfig = serve.Config
	// ServerStats is a snapshot of a server's admission and batching
	// counters.
	ServerStats = serve.Stats
	// ServerTenantStats is one tenant's accepted/rejected/completed
	// share of a server's counters.
	ServerTenantStats = serve.TenantStats
	// ShardedServer is the sharded request-serving runtime: N Server
	// shards — each with its own executor pool, scratch arena and
	// batch dispatcher — with tenants hashed to a home shard and a
	// diffusive balancer that migrates queued requests from an
	// overloaded shard to its ring neighbors when their backlogs
	// diverge. Build one with NewShardedServer.
	ShardedServer = serve.Sharded
	// ShardedServerConfig shapes a ShardedServer (shard count,
	// per-shard workers, migration thresholds, plus the embedded
	// per-shard ServerConfig).
	ShardedServerConfig = serve.ShardedConfig
	// ShardedServerStats is a snapshot of a sharded server's
	// aggregate, per-shard and migration counters.
	ShardedServerStats = serve.ShardedStats
	// ResultCache is the generation-stamped result cache: keyed on
	// (tenant, kernel, input fingerprint, tenant generation), it lets
	// a Server recognize repeated requests at the door and restore
	// their stored outputs with zero kernel work. Build one with
	// NewResultCache and hand it to ServerConfig.Cache (shards of a
	// ShardedServer share the one instance, so migrated requests can
	// never resurrect an invalidated entry). Server.BumpGeneration
	// invalidates a tenant's entries when its data changes.
	ResultCache = rescache.Cache
	// ResultCacheConfig shapes a ResultCache (scratch pool for entry
	// buffers, total byte bound for the LRU).
	ResultCacheConfig = rescache.Config
	// ResultCacheStats is a snapshot of a result cache's occupancy
	// and hit/miss/eviction/invalidation counters.
	ResultCacheStats = rescache.Stats
	// WireListener is the network front door: it serves the binary
	// wire protocol over TCP or Unix sockets onto a Server or
	// ShardedServer, decoding request payloads in place into
	// connection-owned scratch slabs (zero-copy read path), streaming
	// large responses as chunk frames, and stamping each frame's
	// optional deadline budget into the admission ladder. Build one
	// with NewListener.
	WireListener = wire.Listener
	// WireListenerConfig shapes a WireListener (frame size bound,
	// streaming cutoff and chunk size, scratch pool).
	WireListenerConfig = wire.Config
	// WireListenerStats is a snapshot of a listener's connection,
	// request and response counters.
	WireListenerStats = wire.Stats
	// WireClient is the matching client: one connection, synchronous
	// framed round trips, with the same typed Call/CallBudget surface
	// the in-process servers expose. Build one with DialClient.
	WireClient = wire.Client
	// WireBackend is the call surface a WireListener serves onto —
	// satisfied by both *Server and *ShardedServer.
	WireBackend = wire.Backend
	// Kernel is one entry of the typed kernel registry — the unit a
	// WireClient names in a call. Look builtins up with LookupKernel.
	Kernel = kernel.Kernel
	// KernelArgs is a kernel's argument record: inputs, outputs and
	// scalars in one struct, the payload a wire frame carries.
	KernelArgs = kernel.Args
)

// Admission-control errors returned by Server request methods.
var (
	// ErrServerClosed reports a request submitted after Server.Close.
	ErrServerClosed = serve.ErrClosed
	// ErrRequestRejected reports admission backpressure: the tenant's
	// bounded queue is full (the bound tightens while the executor is
	// saturated) and the request was not enqueued.
	ErrRequestRejected = serve.ErrRejected
	// ErrRequestDeadlineExceeded reports a deadline refusal under
	// ServerConfig.SLO: either the door predicted the queue wait would
	// blow the request's budget (refused before enqueue), or the
	// budget lapsed while the request waited and the dispatcher
	// expired it at batch formation instead of serving it late.
	ErrRequestDeadlineExceeded = serve.ErrDeadlineExceeded
)

// Scheduling policies.
const (
	Static  = par.Static
	Cyclic  = par.Cyclic
	Dynamic = par.Dynamic
	Guided  = par.Guided
)

// NewExecutor creates a dedicated persistent worker pool with procs
// workers (<= 0 means GOMAXPROCS). Workers start lazily and park when
// idle; Close releases them.
func NewExecutor(procs int) *Executor { return exec.New(procs) }

// DefaultExecutor returns the lazily started process-wide worker pool
// that all primitives use when Options.Executor is nil.
func DefaultExecutor() *Executor { return exec.Default() }

// ScratchOff disables scratch-buffer reuse when assigned to
// Options.Scratch: every kernel temporary is freshly allocated, the
// baseline the pooled steady state is measured against.
var ScratchOff = scratch.Off

// NewScratchPool creates a dedicated scratch-buffer pool; pin it via
// Options.Scratch to isolate a workload's buffer reuse (and its Stats)
// from the rest of the process.
func NewScratchPool() *ScratchPool { return scratch.New() }

// DefaultScratchStats returns the reuse counters of the process-wide
// scratch pool — the allocator-side companion to the executor's steal
// counters.
func DefaultScratchStats() ScratchStats { return scratch.Default().Stats() }

// Adaptive returns Options that run every kernel under the process-wide
// online tuning runtime: instead of hand-picking Grain, Policy and
// SerialCutoff, each call site learns them per input-size class from
// timing feedback (seeded by the machine model) and degrades toward
// serial execution when the shared executor is under load. Results are
// identical to any fixed configuration; only timings change.
//
//	sorted := make([]int64, len(xs))
//	copy(sorted, xs)
//	repro.Sort(sorted, repro.Adaptive())
func Adaptive() Options { return Options{Adaptive: adapt.Default()} }

// NewAdaptiveController creates a dedicated tuning controller (its
// cache and counters isolated from the process-wide one); pin it via
// Options.Adaptive.
func NewAdaptiveController() *AdaptiveController { return adapt.New(adapt.Config{}) }

// DefaultAdaptiveStats returns the tuning counters of the process-wide
// adaptive controller: sites and size classes seen, decisions and
// explorations made, load-degraded calls, and converged classes.
func DefaultAdaptiveStats() AdaptiveStats { return adapt.Default().Stats() }

// NewPipeline creates an empty streaming pipeline; chain a source
// (FromSlice/FromFunc), transforms and a sink, then call Run once:
//
//	var top []int64
//	p := repro.NewPipeline(repro.PipelineConfig{}).
//		FromSlice(requests).
//		Filter(func(v int64) bool { return v >= 0 }).
//		TopK(100).
//		To(&top)
//	if err := p.Run(); err != nil { ... }
//
// The zero PipelineConfig streams 8K-element chunks on depth-4 queues
// using the process-wide executor and scratch pool; set
// PipelineConfig.Opts for dedicated pools or adaptive tuning.
func NewPipeline(cfg PipelineConfig) *Pipeline { return pipeline.New(cfg) }

// NewServer creates a request-serving runtime and starts its batch
// dispatcher; Close it when done. Requests are submitted with the
// typed methods from any number of goroutines:
//
//	srv := repro.NewServer(repro.ServerConfig{})
//	defer srv.Close()
//	if err := srv.Sort("tenant-a", xs); err != nil { ... }
//	med, err := srv.Select("tenant-b", ys, len(ys)/2)
//
// The zero ServerConfig serves on the process-wide executor and
// scratch pool with default batching and admission bounds; see
// internal/serve for the admission ladder and fairness semantics, and
// `parbench -serve` for a multi-tenant traffic demo.
func NewServer(cfg ServerConfig) *Server { return serve.New(cfg) }

// NewResultCache creates a generation-stamped result cache to hand to
// ServerConfig.Cache. Repeated requests — same tenant, kernel and
// input bytes since the tenant's last BumpGeneration — are then served
// from the cache at the server's door, with the kernel run and the
// batch queue both skipped:
//
//	srv := repro.NewServer(repro.ServerConfig{Cache: repro.NewResultCache(repro.ResultCacheConfig{})})
//	defer srv.Close()
//	_ = srv.Sort("tenant-a", xs) // cold: runs, result stored
//	_ = srv.Sort("tenant-a", xs) // warm: restored, zero kernel work
//	srv.BumpGeneration("tenant-a") // tenant-a's data changed: entries die
//
// The zero ResultCacheConfig draws entry buffers from the process-wide
// scratch pool and bounds the LRU at 64 MiB. See internal/rescache for
// keying and invalidation semantics, `parbench -serve -cache on` for a
// traffic demo, and experiment E27 for the cold/warm/delta latency
// table.
func NewResultCache(cfg ResultCacheConfig) *ResultCache { return rescache.New(cfg) }

// NewShardedServer creates a sharded request-serving runtime and
// starts one batch dispatcher per shard; Close it when done. It
// serves the same typed methods as Server. Each request routes to its
// tenant's home shard (stable hash), so balanced tenants never share
// queues, executors or scratch pools; under tenant skew the diffusive
// balancer migrates queued requests to adjacent shards:
//
//	srv := repro.NewShardedServer(repro.ShardedServerConfig{})
//	defer srv.Close()
//	if err := srv.Sort("tenant-a", xs); err != nil { ... }
//	fmt.Println(srv.Stats().Migrated)
//
// The zero ShardedServerConfig picks min(GOMAXPROCS/4, 8) shards
// (REPRO_EXEC_SHARDS overrides) splitting GOMAXPROCS workers evenly,
// with migration on at default hysteresis. See internal/serve for
// the affinity and migration semantics, and `parbench -serve -shards
// N` for a skewed-traffic demo.
func NewShardedServer(cfg ShardedServerConfig) *ShardedServer { return serve.NewSharded(cfg) }

// NewListener starts a wire-protocol front door on network/addr
// ("tcp", "127.0.0.1:7070" or "unix", "/tmp/parserve.sock") serving
// backend — a *Server or *ShardedServer. Close it to drain in-flight
// requests and shut the socket:
//
//	srv := repro.NewShardedServer(repro.ShardedServerConfig{})
//	defer srv.Close()
//	l, err := repro.NewListener("tcp", "127.0.0.1:0", srv, repro.WireListenerConfig{})
//	if err != nil { ... }
//	defer l.Close()
//
// The zero WireListenerConfig bounds frames at 64 MiB, streams
// responses past 1 MiB as 64 KiB chunks, and draws connection buffers
// from the process-wide scratch pool. See internal/wire for the frame
// format and `cmd/parserve` for a standalone server binary.
func NewListener(network, addr string, backend WireBackend, cfg WireListenerConfig) (*WireListener, error) {
	return wire.Listen(network, addr, backend, cfg)
}

// DialClient connects a wire-protocol client to a NewListener (or
// parserve) front door. A client is one connection with synchronous
// round trips — open one per concurrent request stream:
//
//	cl, err := repro.DialClient("tcp", l.Addr().String())
//	if err != nil { ... }
//	defer cl.Close()
//	a := repro.KernelArgs{Xs: xs}
//	err = cl.CallBudget("tenant-a", repro.LookupKernel("sort"), &a, 5*time.Millisecond)
//
// CallBudget's budget rides the frame as deadline metadata: the
// server's admission door refuses the request when the predicted
// queue wait would blow it, exactly as for an in-process caller.
func DialClient(network, addr string) (*WireClient, error) {
	return wire.Dial(network, addr)
}

// LookupKernel returns the registered kernel named name (nil when
// unknown). The builtins are "sort", "select", "histogram", "scan",
// "sum", "bfs", "gups", "topk" and "cc".
func LookupKernel(name string) *Kernel { return kernel.Lookup(name) }

// For executes body(i) for i in [0, n) in parallel.
func For(n int, opts Options, body func(i int)) { par.For(n, opts, body) }

// Sum computes a parallel sum of xs.
func Sum(xs []int64, opts Options) int64 { return par.Sum(xs, opts) }

// ScanInclusive computes parallel inclusive prefix sums of xs into dst.
func ScanInclusive(dst, xs []int64, opts Options) {
	par.ScanInclusive(dst, xs, opts, 0, func(a, b int64) int64 { return a + b })
}

// Sort sorts xs in place with parallel sample sort.
func Sort(xs []int64, opts Options) { psort.SampleSort(xs, opts) }

// MergeSort sorts xs in place with parallel merge sort.
func MergeSort(xs []int64, opts Options) { psort.MergeSort(xs, opts) }

// RadixSort sorts xs in place with parallel LSD radix sort.
func RadixSort(xs []int64, opts Options) { psort.RadixSort(xs, opts) }

// ListRank returns each node's distance from the list head via parallel
// pointer jumping.
func ListRank(l *List, opts Options) []int { return plist.Rank(l, opts) }

// ConnectedComponents labels the components of g (hook-and-shortcut).
func ConnectedComponents(g *Graph, opts Options) []int32 { return pgraph.CCHook(g, opts) }

// BFS returns hop distances from src (-1 when unreachable).
func BFS(g *Graph, src int, opts Options) []int32 { return pgraph.BFS(g, src, opts) }

// MSTWeight returns the weight of a minimum spanning forest (Borůvka).
func MSTWeight(g *Graph, opts Options) float64 { return pgraph.MSTBoruvka(g, opts) }

// MatMul multiplies dense matrices with the blocked parallel kernel.
func MatMul(a, b *Matrix, opts Options) *Matrix {
	return pmat.Mul(a, b, pmat.Config{Opts: opts})
}

// Jacobi runs iters parallel 5-point stencil sweeps and returns the
// resulting grid.
func Jacobi(g *Grid, iters int, opts Options) *Grid { return pstencil.Jacobi(g, iters, opts) }

// SequentialSort is the engineered sequential baseline (for comparisons).
func SequentialSort(xs []int64) { seq.Quicksort(xs) }

// Select returns the k-th smallest element of xs (0-based) without
// modifying xs, using the parallel count/pack quickselect.
func Select(xs []int64, k int, opts Options) int64 { return psel.Select(xs, k, opts) }

// PageRank computes damped PageRank on an undirected graph; see
// internal/pgraph for the full knobs.
func PageRank(g *Graph, opts Options) []float64 {
	return pgraph.PageRank(g, 0.85, 1e-9, 500, opts).Ranks
}

// TriangleCount returns the number of triangles in a simple graph.
func TriangleCount(g *Graph, opts Options) int64 { return pgraph.TriangleCount(g, opts) }

// Workload generators (see internal/gen for the full set).

// RandomInts generates n uniformly random keys from seed.
func RandomInts(n int, seed uint64) []int64 { return gen.Ints(n, gen.Uniform, seed) }

// RandomGraph generates an Erdős–Rényi graph with average degree avgDeg.
func RandomGraph(n int, avgDeg float64, weighted bool, seed uint64) *Graph {
	return gen.ErdosRenyi(n, avgDeg, weighted, seed)
}

// PowerLawGraph generates an R-MAT graph with 2^scale nodes.
func PowerLawGraph(scale, edgeFactor int, weighted bool, seed uint64) *Graph {
	return gen.RMAT(scale, edgeFactor, weighted, seed)
}

// RandomLinkedList generates a randomly laid-out linked list of n nodes.
func RandomLinkedList(n int, seed uint64) *List { return gen.RandomList(n, seed) }

// RunExperiment regenerates one table/figure of the evaluation (ids
// "E1".."E18") and writes it to w. It reports whether the id exists.
func RunExperiment(id string, cfg ExperimentConfig, w io.Writer) bool {
	e, ok := core.ByID(id)
	if !ok {
		return false
	}
	t := e.Run(cfg)
	_ = t.Render(w)
	return true
}

// ExperimentIDs lists the suite's experiment ids in evaluation order.
func ExperimentIDs() []string {
	ids := make([]string, len(core.Experiments))
	for i, e := range core.Experiments {
		ids[i] = e.ID
	}
	return ids
}
